package hoplite

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"hoplite/internal/netem"
	"hoplite/internal/types"
)

// TestConcurrentIndependentReduces runs several reduces with disjoint
// source sets at once; coordinators, executors and the directory must not
// cross-talk.
func TestConcurrentIndependentReduces(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{})
	const elems = 16 << 10
	const jobs = 5
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sources := make([]ObjectID, 4)
			var want float32
			for i := range sources {
				sources[i] = ObjectIDFromString(fmt.Sprintf("cr-%d-%d", j, i))
				val := float32(j*10 + i)
				want += val
				xs := make([]float32, elems)
				for k := range xs {
					xs[k] = val
				}
				if err := c.Node(i).Put(ctx, sources[i], types.EncodeF32(xs)); err != nil {
					errs <- err
					return
				}
			}
			target := ObjectIDFromString(fmt.Sprintf("cr-out-%d", j))
			if _, err := c.Node(j%4).Reduce(ctx, target, sources, 4, SumF32); err != nil {
				errs <- err
				return
			}
			raw, err := c.Node((j+1)%4).Get(ctx, target)
			if err != nil {
				errs <- err
				return
			}
			got := types.DecodeF32(raw)
			if got[0] != want || got[elems-1] != want {
				errs <- fmt.Errorf("job %d: got %v want %v", j, got[0], want)
			}
		}(j)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRestartNodeRejoins kills a worker node, restarts it under the same
// fabric name, and checks the fresh node participates fully.
func TestRestartNodeRejoins(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{Emulate: slowEmu(), ShardNodes: 1})
	oid := oidOnShard(t, "restart", 1, 0)
	data := payload(2<<20, 5)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(3).Get(ctx, oid); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(3); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := c.RestartNode(3); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	got, err := c.Node(3).Get(ctx, oid)
	if err != nil {
		t.Fatalf("Get on restarted node: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restarted node payload mismatch")
	}
	// The restarted node can also produce objects.
	oid2 := oidOnShard(t, "restart2", 1, 0)
	if err := c.Node(3).Put(ctx, oid2, data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).Get(ctx, oid2); err != nil {
		t.Fatal(err)
	}
}

// TestRestartShardHost restarts nodes hosting directory shard replicas —
// with replication, a shard host no longer takes its shards' metadata
// down with it: the restarted node rebinds its old address, rejoins its
// groups as an out-of-sync backup, and is re-synced by the promoted
// primaries.
func TestRestartShardHost(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 3, Options{Emulate: slowEmu()})
	defer c.Close()
	data := payload(2<<20, 9)
	oid := oidOnShard(t, "shost", c.Size(), 1)
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatal(err)
	}
	// Node 1 is shard 1's initial primary and a backup of shards 0 and 2.
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := c.RestartNode(1); err != nil {
		t.Fatalf("RestartNode on shard host: %v", err)
	}
	got, err := c.Node(1).Get(ctx, oid)
	if err != nil {
		t.Fatalf("Get on restarted shard host: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restarted shard host payload mismatch")
	}
	// The restarted host serves new objects on its shards too.
	oid2 := oidOnShard(t, "shost2", c.Size(), 1)
	if err := c.Node(1).Put(ctx, oid2, data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(2).Get(ctx, oid2); err != nil {
		t.Fatal(err)
	}
}

// TestGetImmutableSmallObject covers zero-copy reads through the inline
// fast path.
func TestGetImmutableSmallObject(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	oid := ObjectIDFromString("imm-small")
	data := []byte("hello inline world")
	if err := c.Node(0).Put(ctx, oid, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Node(1).GetImmutable(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
}

// TestAllReduceStaggered runs the cluster AllReduce helper with sources
// appearing over time.
func TestAllReduceStaggered(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{})
	const elems = 16 << 10
	sources := make([]ObjectID, 4)
	for i := range sources {
		sources[i] = ObjectIDFromString(fmt.Sprintf("ars-%d", i))
		go func(i int) {
			time.Sleep(time.Duration(i) * 25 * time.Millisecond)
			xs := make([]float32, elems)
			for k := range xs {
				xs[k] = 1
			}
			c.Node(i).Put(ctx, sources[i], types.EncodeF32(xs))
		}(i)
	}
	target := ObjectIDFromString("ars-out")
	if _, err := c.AllReduce(ctx, 2, target, sources, 4, SumF32); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		raw, err := c.Node(i).GetImmutable(ctx, target)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if got := types.DecodeF32(raw); got[0] != 4 {
			t.Fatalf("node %d: got %v", i, got[0])
		}
	}
}

// TestClusterCloseIdempotent verifies shutdown is clean and repeatable.
func TestClusterCloseIdempotent(t *testing.T) {
	c, err := StartLocalCluster(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := c.Node(0).Put(ctx, RandomObjectID(), make([]byte, 1<<20)); err == nil {
		t.Fatal("Put on closed cluster succeeded")
	}
}

// TestStandaloneNodesOverTCP wires nodes manually (the hoplited
// deployment path: one shard host plus workers joining by address).
func TestStandaloneNodesOverTCP(t *testing.T) {
	ctx := testCtx(t)
	head, err := NewNode(Config{Fabric: tcpFabric(), HostShard: true})
	if err != nil {
		t.Fatal(err)
	}
	defer head.Close()
	worker, err := NewNode(Config{Fabric: tcpFabric(), DirectoryShards: []string{head.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	oid := ObjectIDFromString("standalone")
	data := payload(1<<20, 8)
	if err := head.Put(ctx, oid, data); err != nil {
		t.Fatal(err)
	}
	got, err := worker.Get(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
}

// tcpFabric returns a fresh plain-TCP fabric for standalone-node tests.
func tcpFabric() netem.Fabric { return &netem.TCP{} }
