// Paramserver runs the paper's asynchronous SGD workload (§5.2) on an
// emulated cluster twice — once using Hoplite's reduce/broadcast, once
// using Ray-style individual transfers — and prints the throughput of
// each, reproducing the shape of Figure 9.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"hoplite"
	"hoplite/internal/netem"
	"hoplite/internal/types"
)

const (
	nodes     = 8
	modelSize = 8 << 20 // a scaled-down AlexNet
	batch     = (nodes - 1) / 2
	rounds    = 10
	computeT  = 20 * time.Millisecond
)

func main() {
	for _, useHoplite := range []bool{true, false} {
		tput, err := run(useHoplite)
		if err != nil {
			log.Fatal(err)
		}
		name := "Hoplite (reduce+broadcast)"
		if !useHoplite {
			name = "Ray-style (individual transfers)"
		}
		fmt.Printf("%-35s %.1f updates/s\n", name, tput)
	}
}

func run(useHoplite bool) (float64, error) {
	link := netem.LinkConfig{Latency: 200 * time.Microsecond, BytesPerSec: 64 << 20}
	cluster, err := hoplite.StartLocalCluster(nodes, hoplite.Options{Emulate: &link})
	if err != nil {
		return 0, err
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	model := types.EncodeF32(make([]float32, modelSize/4))
	ps := cluster.Node(0)

	type result struct {
		worker int
		grad   hoplite.ObjectID
		err    error
	}
	jobs := make([]chan hoplite.ObjectID, nodes)
	results := make(chan result, nodes)
	// Defers run LIFO: wg.Wait must be registered before close(done) so
	// the workers see the shutdown signal before we wait for them.
	var wg sync.WaitGroup
	defer wg.Wait()
	done := make(chan struct{})
	defer close(done)
	for w := 1; w < nodes; w++ {
		jobs[w] = make(chan hoplite.ObjectID, 2)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := cluster.Node(w)
			for {
				select {
				case <-done:
					return
				case m := <-jobs[w]:
					// Zero-copy model read: the ref pins the store copy
					// for exactly the duration of the (simulated) pass.
					ref, err := node.GetRef(ctx, m)
					if err != nil {
						results <- result{w, hoplite.ObjectID{}, err}
						return
					}
					time.Sleep(computeT) //hoplite:sleep-ok simulated forward+backward pass, not polling
					ref.Release()
					// Stream the gradient out instead of materializing it.
					g := hoplite.RandomObjectID()
					gw, err := node.Create(ctx, g, int64(len(model)))
					if err == nil {
						_, err = gw.Write(model)
					}
					if err == nil {
						err = gw.Seal()
					}
					if err != nil {
						results <- result{w, g, err}
						return
					}
					results <- result{w, g, nil}
				}
			}
		}(w)
	}

	m0 := hoplite.RandomObjectID()
	if err := ps.Put(ctx, m0, model); err != nil {
		return 0, err
	}
	dispatch := func(w int) error {
		if useHoplite {
			jobs[w] <- m0
			return nil
		}
		priv := hoplite.RandomObjectID() // Ray: a private copy per worker
		if err := ps.Put(ctx, priv, model); err != nil {
			return err
		}
		jobs[w] <- priv
		return nil
	}
	for w := 1; w < nodes; w++ {
		if err := dispatch(w); err != nil {
			return 0, err
		}
	}

	applied := 0
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		var grads []hoplite.ObjectID
		var workers []int
		for len(grads) < batch {
			res := <-results
			if res.err != nil {
				return 0, res.err
			}
			grads = append(grads, res.grad)
			workers = append(workers, res.worker)
		}
		if useHoplite {
			// Async reduce: the coordinator runs in the background; the
			// parameter server applies the folded gradient through a
			// pinned zero-copy ref once the future resolves.
			sum := hoplite.RandomObjectID()
			if _, err := ps.ReduceAsync(ctx, sum, grads, len(grads), hoplite.SumF32).Await(ctx); err != nil {
				return 0, err
			}
			ref, err := ps.GetRef(ctx, sum)
			if err != nil {
				return 0, err
			}
			ref.Release()
			ps.Delete(ctx, sum)
		} else {
			for _, g := range grads { // Ray: apply one at a time
				if _, err := ps.Get(ctx, g); err != nil {
					return 0, err
				}
			}
		}
		for _, g := range grads {
			ps.Delete(ctx, g)
		}
		applied += len(grads)
		m0 = hoplite.RandomObjectID()
		if err := ps.Put(ctx, m0, model); err != nil {
			return 0, err
		}
		for _, w := range workers {
			if err := dispatch(w); err != nil {
				return 0, err
			}
		}
	}
	return float64(applied) / time.Since(t0).Seconds(), nil
}
