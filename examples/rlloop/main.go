// Rlloop implements the paper's motivating RL training loop (Figure 1b)
// on the task framework: rollout tasks produce gradients asynchronously;
// each step reduces a batch of whichever gradients finished first,
// updates the policy, and broadcasts it to the finished agents.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hoplite"
	"hoplite/internal/task"
	"hoplite/internal/types"
)

const (
	agents    = 7
	policyLen = 1 << 20 // f32 elements (4 MB policy)
	batchSize = 3
	steps     = 5
)

func main() {
	cluster, err := hoplite.StartLocalCluster(agents+1, hoplite.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	tc := task.NewCluster(cluster.Nodes(), 1)
	defer tc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// rollout(policy) -> gradient: fetch the policy, "simulate", emit a
	// gradient of the same shape.
	tc.Register("rollout", func(inv *task.Invocation) error {
		ref, err := inv.ArgRef(0) // zero-copy policy read, pinned for the rollout
		if err != nil {
			return err
		}
		time.Sleep(10 * time.Millisecond) // environment simulation
		ref.Release()
		grad := make([]float32, policyLen)
		for i := range grad {
			grad[i] = 0.01
		}
		return inv.SetReturn(0, types.EncodeF32(grad))
	})

	driver := cluster.Node(0)
	policy := hoplite.ObjectIDFromString("policy-0")
	if err := driver.Put(ctx, policy, types.EncodeF32(make([]float32, policyLen))); err != nil {
		log.Fatal(err)
	}

	// Start one rollout per agent (Figure 1: grad_ids = [rollout.remote(policy) ...]).
	var gradIDs []hoplite.ObjectID
	for a := 0; a < agents; a++ {
		gradIDs = append(gradIDs, tc.Submit("rollout", []hoplite.ObjectID{policy}, 1, a+1)[0])
	}

	for step := 0; step < steps; step++ {
		t0 := time.Now()
		// Reduce a batch of gradients — whichever are ready first
		// (ray.reduce(grad_ids, num_return=batch_size, op=ray.ADD)).
		sum := hoplite.ObjectIDFromString(fmt.Sprintf("grad-sum-%d", step))
		used, err := driver.Reduce(ctx, sum, gradIDs, batchSize, hoplite.SumF32)
		if err != nil {
			log.Fatal(err)
		}
		if ref, err := driver.GetRef(ctx, sum); err != nil {
			log.Fatal(err)
		} else {
			ref.Release()
		}
		// "policy += reduced / batch": update and publish the new policy.
		policy = hoplite.ObjectIDFromString(fmt.Sprintf("policy-%d", step+1))
		if err := driver.Put(ctx, policy, types.EncodeF32(make([]float32, policyLen))); err != nil {
			log.Fatal(err)
		}
		// Restart rollouts for the agents whose gradients were consumed;
		// the new policy broadcast happens implicitly as they fetch it.
		usedSet := map[hoplite.ObjectID]bool{}
		for _, u := range used {
			usedSet[u] = true
		}
		var remaining []hoplite.ObjectID
		for _, g := range gradIDs {
			if !usedSet[g] {
				remaining = append(remaining, g)
			}
		}
		for range used {
			remaining = append(remaining, tc.Submit("rollout", []hoplite.ObjectID{policy}, 1, task.AnyNode)[0])
		}
		gradIDs = remaining
		fmt.Printf("step %d: reduced %d gradients in %v, %d rollouts in flight\n",
			step, len(used), time.Since(t0), len(gradIDs))
	}
}
