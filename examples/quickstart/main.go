// Quickstart: a four-node local Hoplite cluster on the handle-based API —
// stream an object in with an ObjectWriter, read it elsewhere through a
// pinned zero-copy ObjectRef, broadcast it everywhere with futures, and
// reduce per-node gradients asynchronously.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hoplite"
	"hoplite/internal/types"
)

func main() {
	cluster, err := hoplite.StartLocalCluster(4, hoplite.Options{})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// 1. Streaming Put on node 0: the producer writes through an
	// io.Writer, never materializing the full payload, while receivers
	// can already pipeline off the partial object. Read on node 3 via a
	// pinned zero-copy ref.
	weights := hoplite.ObjectIDFromString("weights-v1")
	payload := types.EncodeF32(make([]float32, 1<<20)) // 4 MB of zeros
	for i := range payload {
		payload[i] = byte(i)
	}
	w, err := cluster.Node(0).Create(ctx, weights, int64(len(payload)))
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	for off := 0; off < len(payload); off += 1 << 20 {
		end := min(off+1<<20, len(payload))
		if _, err := w.Write(payload[off:end]); err != nil {
			log.Fatalf("write: %v", err)
		}
	}
	if err := w.Seal(); err != nil {
		log.Fatalf("seal: %v", err)
	}
	ref, err := cluster.Node(3).GetRef(ctx, weights)
	if err != nil {
		log.Fatalf("get ref: %v", err)
	}
	fmt.Printf("node 3 sees %d bytes of %v with zero copies\n", ref.Size(), weights)
	ref.Release()

	// 2. Broadcast: every node takes a ref future; receivers relay to
	// each other so node 0's uplink is not the bottleneck, and no
	// goroutine is parked per waiter.
	t0 := time.Now()
	futs := make([]*hoplite.RefFuture, 0, cluster.Size()-1)
	for i := 1; i < cluster.Size(); i++ {
		futs = append(futs, cluster.Node(i).GetRefAsync(ctx, weights))
	}
	for i, fut := range futs {
		r, err := fut.Await(ctx)
		if err != nil {
			log.Fatalf("node %d broadcast get: %v", i+1, err)
		}
		r.Release()
	}
	fmt.Printf("broadcast to %d nodes in %v\n", cluster.Size()-1, time.Since(t0))

	// 3. Reduce: each node puts a gradient; node 0 folds them with a
	// dynamically built tree — asynchronously — and reads the sum.
	grads := make([]hoplite.ObjectID, cluster.Size())
	for i := range grads {
		xs := make([]float32, 1024)
		for j := range xs {
			xs[j] = float32(i + 1)
		}
		grads[i] = hoplite.ObjectIDFromString(fmt.Sprintf("grad-%d", i))
		if err := cluster.Node(i).Put(ctx, grads[i], types.EncodeF32(xs)); err != nil {
			log.Fatalf("put grad %d: %v", i, err)
		}
	}
	sum := hoplite.ObjectIDFromString("grad-sum")
	fut := cluster.Node(0).ReduceAsync(ctx, sum, grads, len(grads), hoplite.SumF32)
	used, err := fut.Await(ctx)
	if err != nil {
		log.Fatalf("reduce: %v", err)
	}
	sumRef, err := cluster.Node(0).GetRef(ctx, sum)
	if err != nil {
		log.Fatalf("get sum: %v", err)
	}
	defer sumRef.Release()
	fmt.Printf("reduced %d gradients; sum[0] = %v (want %v)\n",
		len(used), types.DecodeF32(sumRef.Bytes())[0], float32(1+2+3+4))
}
