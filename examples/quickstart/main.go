// Quickstart: a four-node local Hoplite cluster — put an object, get it
// elsewhere, broadcast it everywhere, and reduce per-node gradients.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"hoplite"
	"hoplite/internal/types"
)

func main() {
	cluster, err := hoplite.StartLocalCluster(4, hoplite.Options{})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// 1. Put on node 0, Get on node 3 — the object directory finds it.
	weights := hoplite.ObjectIDFromString("weights-v1")
	payload := types.EncodeF32(make([]float32, 1<<20)) // 4 MB of zeros
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := cluster.Node(0).Put(ctx, weights, payload); err != nil {
		log.Fatalf("put: %v", err)
	}
	got, err := cluster.Node(3).Get(ctx, weights)
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("node 3 fetched %d bytes of %v\n", len(got), weights)

	// 2. Broadcast: every node Gets the same object; receivers relay to
	// each other so node 0's uplink is not the bottleneck.
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 1; i < cluster.Size(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cluster.Node(i).GetImmutable(ctx, weights); err != nil {
				log.Fatalf("node %d broadcast get: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("broadcast to %d nodes in %v\n", cluster.Size()-1, time.Since(t0))

	// 3. Reduce: each node puts a gradient; node 0 folds them with a
	// dynamically built tree and fetches the sum.
	grads := make([]hoplite.ObjectID, cluster.Size())
	for i := range grads {
		xs := make([]float32, 1024)
		for j := range xs {
			xs[j] = float32(i + 1)
		}
		grads[i] = hoplite.ObjectIDFromString(fmt.Sprintf("grad-%d", i))
		if err := cluster.Node(i).Put(ctx, grads[i], types.EncodeF32(xs)); err != nil {
			log.Fatalf("put grad %d: %v", i, err)
		}
	}
	sum := hoplite.ObjectIDFromString("grad-sum")
	used, err := cluster.Node(0).Reduce(ctx, sum, grads, len(grads), hoplite.SumF32)
	if err != nil {
		log.Fatalf("reduce: %v", err)
	}
	raw, err := cluster.Node(0).Get(ctx, sum)
	if err != nil {
		log.Fatalf("get sum: %v", err)
	}
	fmt.Printf("reduced %d gradients; sum[0] = %v (want %v)\n",
		len(used), types.DecodeF32(raw)[0], float32(1+2+3+4))
}
