// Serving runs the paper's ensemble model-serving workload (§5.4, §5.5):
// a driver broadcasts each query's image batch to a set of model nodes
// and tallies their votes — then kills one model node mid-run and
// restarts it, showing that queries keep flowing through the failure and
// the rejoin (Figure 12).
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"hoplite"
	"hoplite/internal/netem"
)

const (
	models  = 7 // nodes 1..7 serve one model each; node 0 drives
	queries = 24
	failAt  = 8
	backAt  = 16
)

func main() {
	link := netem.LinkConfig{Latency: 200 * time.Microsecond, BytesPerSec: 64 << 20}
	cluster, err := hoplite.StartLocalCluster(models+1, hoplite.Options{
		Emulate:    &link,
		ShardNodes: 1, // directory lives on the driver; model nodes may die
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	driver := cluster.Node(0)
	batch := make([]byte, 4<<20) // 64-image query batch (scaled)

	for q := 0; q < queries; q++ {
		switch q {
		case failAt:
			fmt.Println("--- killing model node 3 ---")
			cluster.KillNode(3)
		case backAt:
			fmt.Println("--- restarting model node 3 (rejoin) ---")
			if err := cluster.RestartNode(3); err != nil {
				log.Fatal(err)
			}
		}
		t0 := time.Now()
		query := hoplite.ObjectIDFromString(fmt.Sprintf("query-%d", q))
		if err := driver.Put(ctx, query, batch); err != nil {
			log.Fatal(err)
		}
		votes := make([]int, 10)
		var mu sync.Mutex
		var wg sync.WaitGroup
		answered := 0
		for w := 1; w <= models; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				node := cluster.Node(w)
				wctx, wcancel := context.WithTimeout(ctx, 3*time.Second)
				defer wcancel()
				ref, err := node.GetRef(wctx, query)
				if err != nil {
					return // this model is down; the ensemble continues
				}
				time.Sleep(5 * time.Millisecond) // inference
				ref.Release()
				mu.Lock()
				votes[w%10]++
				answered++
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		driver.Delete(ctx, query)
		best := 0
		for cls, v := range votes {
			if v > votes[best] {
				best = cls
			}
		}
		fmt.Printf("query %2d: class=%d from %d/%d models in %v\n",
			q, best, answered, models, time.Since(t0))
	}
}
