module hoplite

go 1.21
