package hoplite

// Tests for the handle-based object API: pinned zero-copy ObjectRefs,
// streaming ObjectWriters, and async futures.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"hoplite/internal/netem"
	"hoplite/internal/types"
)

// TestObjectRefSurvivesEviction is the end-to-end regression test for the
// GetImmutable recycle hazard: a held ObjectRef pins the store copy, so
// store-pressure eviction must skip it; once released, the copy becomes
// the next eviction victim.
func TestObjectRefSurvivesEviction(t *testing.T) {
	ctx := testCtx(t)
	const objSize = 1 << 20
	c := startCluster(t, 2, Options{StoreCapacity: int64(objSize)*2 + objSize/2})
	oid := ObjectIDFromString("pinned-under-pressure")
	want := payload(objSize, 9)
	if err := c.Node(0).Put(ctx, oid, want); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Node(1).GetRef(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	// Flood node 1 with other remote objects. Each Get lands an unpinned
	// copy, so the store exceeds its two-object budget and must evict —
	// but never the ref'd copy, even though it is the LRU entry.
	for i := 0; i < 4; i++ {
		other := ObjectIDFromString(fmt.Sprintf("pressure-%d", i))
		if err := c.Node(0).Put(ctx, other, payload(objSize, byte(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Node(1).Get(ctx, other); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Node(1).Store().Contains(oid) {
		t.Fatal("store evicted an object with a live ref")
	}
	if !bytes.Equal(ref.Bytes(), want) {
		t.Fatal("pinned view corrupted under store pressure")
	}
	// Streaming accessors read the same payload.
	got, err := io.ReadAll(ref.Reader())
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Reader mismatch (err %v)", err)
	}
	ref.Release()
	// Released and cold: the next pressure round may now evict it.
	for i := 4; i < 7; i++ {
		other := ObjectIDFromString(fmt.Sprintf("pressure-%d", i))
		if err := c.Node(0).Put(ctx, other, payload(objSize, byte(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Node(1).Get(ctx, other); err != nil {
			t.Fatal(err)
		}
	}
	if c.Node(1).Store().Contains(oid) {
		t.Fatal("released LRU copy not evicted under pressure")
	}
}

// TestObjectRefReadableAfterDelete: a complete pinned view stays readable
// even after the object is deleted cluster-wide (sealed buffers are never
// failed; Delete only forgets the copy).
func TestObjectRefReadableAfterDelete(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	oid := ObjectIDFromString("read-after-delete")
	want := payload(1<<20, 5)
	if err := c.Node(0).Put(ctx, oid, want); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Node(1).GetRef(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Release()
	if err := c.Node(0).Delete(ctx, oid); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref.Bytes(), want) {
		t.Fatal("held ref corrupted by Delete")
	}
}

// TestObjectWriterStreaming drives the streaming producer path: a remote
// Get started mid-write streams the partial object off the chunk ledger
// and completes when the writer seals.
func TestObjectWriterStreaming(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	oid := ObjectIDFromString("streamed-put")
	want := payload(2<<20, 11)
	w, err := c.Node(0).Create(ctx, oid, int64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	half := len(want) / 2
	if _, err := w.Write(want[:half]); err != nil {
		t.Fatal(err)
	}
	if w.Written() != int64(half) || w.Size() != int64(len(want)) {
		t.Fatalf("written %d size %d", w.Written(), w.Size())
	}
	// Start the remote fetch while the object is half-written.
	fut := c.Node(1).GetAsync(ctx, oid)
	if _, err := w.Write(want[half:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	got, err := fut.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("streamed object mismatch")
	}
	// The writer is spent: further writes and seals fail.
	if _, err := w.Write([]byte("x")); !errors.Is(err, types.ErrClosed) {
		t.Fatalf("write after seal: %v", err)
	}
	if err := w.Seal(); !errors.Is(err, types.ErrClosed) {
		t.Fatalf("double seal: %v", err)
	}
}

// TestObjectWriterAbort: an aborted writer removes the store entry and
// directory location; the ID is reusable by a fresh writer.
func TestObjectWriterAbort(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	oid := ObjectIDFromString("aborted-put")
	w, err := c.Node(0).Create(ctx, oid, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload(256<<10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err) // idempotent
	}
	if c.Node(0).Store().Contains(oid) {
		t.Fatal("aborted object still in store")
	}
	short, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
	if _, err := c.Node(1).Get(short, oid); err == nil {
		t.Fatal("aborted object still fetchable")
	}
	cancel()
	// The ID is free again.
	want := payload(1<<20, 2)
	w2, err := c.Node(0).Create(ctx, oid, int64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write(want); err != nil {
		t.Fatal(err)
	}
	if err := w2.Seal(); err != nil {
		t.Fatal(err)
	}
	got, err := c.Node(1).Get(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("re-created object mismatch")
	}
}

// TestObjectWriterOverrun: writing past the declared size tears the
// object down with a sticky error.
func TestObjectWriterOverrun(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 1, Options{})
	w, err := c.Node(0).Create(ctx, ObjectIDFromString("overrun"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 16)); err == nil {
		t.Fatal("overrun write succeeded")
	}
	if err := w.Seal(); err == nil {
		t.Fatal("seal after overrun succeeded")
	}
	if c.Node(0).Store().Contains(w.OID()) {
		t.Fatal("overrun object left in store")
	}
}

// TestGetAsyncCancelInFlight cancels a GetAsync while its pull is mid
// transfer: the future must resolve with the ctx error promptly, and the
// object must remain fetchable afterwards — the ledger's claims are not
// poisoned by the abandoned waiter.
func TestGetAsyncCancelInFlight(t *testing.T) {
	ctx := testCtx(t)
	const size = 8 << 20
	c := startCluster(t, 2, Options{
		Emulate: &netem.LinkConfig{Latency: 200 * time.Microsecond, BytesPerSec: 8 << 20},
	})
	oid := ObjectIDFromString("cancel-mid-pull")
	want := payload(size, 3)
	if err := c.Node(0).Put(ctx, oid, want); err != nil {
		t.Fatal(err)
	}
	gctx, cancel := context.WithCancel(ctx)
	fut := c.Node(1).GetAsync(gctx, oid)
	// Wait until the pull has actually landed a partial buffer.
	deadline := time.Now().Add(10 * time.Second)
	for !c.Node(1).Store().Contains(oid) {
		if time.Now().After(deadline) {
			t.Fatal("pull never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	start := time.Now()
	if _, err := fut.Await(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("await after cancel: %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("canceled future resolved too slowly")
	}
	select {
	case <-fut.Done():
	default:
		t.Fatal("Done not closed after cancellation")
	}
	// The ledger is reusable: a fresh Get (joining or restarting the
	// pull) returns the full object.
	got, err := c.Node(1).Get(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("object corrupted after canceled async get")
	}
}

// TestGetAsyncCancelBeforeProduced cancels a GetAsync whose object does
// not exist anywhere yet (the future-as-ObjectID case): the acquisition
// must unwind, releasing its directory claim, and the object must remain
// producible and fetchable afterwards.
func TestGetAsyncCancelBeforeProduced(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	oid := ObjectIDFromString("cancel-before-put")
	gctx, cancel := context.WithCancel(ctx)
	fut := c.Node(1).GetAsync(gctx, oid)
	time.Sleep(50 * time.Millisecond) // let the acquisition block
	cancel()
	if _, err := fut.Await(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("await after cancel: %v", err)
	}
	want := payload(1<<20, 8)
	if err := c.Node(0).Put(ctx, oid, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Node(1).Get(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("object mismatch after canceled pre-production get")
	}
}

// TestGetRefAsyncResolvesEventDriven: a future taken out before the
// object is produced resolves once the producer seals, and hands out a
// pinned ref.
func TestGetRefAsyncResolvesEventDriven(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 2, Options{})
	oid := ObjectIDFromString("future-before-put")
	fut := c.Node(1).GetRefAsync(ctx, oid)
	select {
	case <-fut.Done():
		t.Fatal("future resolved before production")
	case <-time.After(50 * time.Millisecond):
	}
	want := payload(1<<20, 4)
	if err := c.Node(0).Put(ctx, oid, want); err != nil {
		t.Fatal(err)
	}
	ref, err := fut.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Release()
	if !bytes.Equal(ref.Bytes(), want) {
		t.Fatal("future-resolved ref mismatch")
	}
}

// TestGetAllBatched fetches a mixed batch (inline small objects and
// stored large ones) concurrently, preserving input order.
func TestGetAllBatched(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{})
	var oids []ObjectID
	var want [][]byte
	for i := 0; i < 8; i++ {
		size := 1 << 10 // inline
		if i%2 == 0 {
			size = 512 << 10 // stored
		}
		data := payload(size, byte(i))
		oid := ObjectIDFromString(fmt.Sprintf("batch-%d", i))
		if err := c.Node(i%4).Put(ctx, oid, data); err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
		want = append(want, data)
	}
	got, err := c.Node(3).GetAll(ctx, oids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("batch entry %d mismatch", i)
		}
	}
}

// TestReduceAsync runs a reduce through its future form.
func TestReduceAsync(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 4, Options{})
	srcs := make([]ObjectID, 4)
	for i := range srcs {
		srcs[i] = ObjectIDFromString(fmt.Sprintf("ra-src-%d", i))
		xs := make([]float32, 64<<10)
		for j := range xs {
			xs[j] = float32(i + 1)
		}
		if err := c.Node(i).Put(ctx, srcs[i], types.EncodeF32(xs)); err != nil {
			t.Fatal(err)
		}
	}
	target := ObjectIDFromString("ra-sum")
	fut := c.Node(0).ReduceAsync(ctx, target, srcs, len(srcs), SumF32)
	used, err := fut.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(used) != 4 {
		t.Fatalf("used %d sources", len(used))
	}
	raw, err := c.Node(2).Get(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	if got := types.DecodeF32(raw)[0]; got != 10 {
		t.Fatalf("sum %v, want 10", got)
	}
}

// TestObjectRefDoubleReleasePanics: handles are pooled, so a second
// Release must fail loudly rather than silently unpin a recycled handle.
func TestObjectRefDoubleReleasePanics(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 1, Options{})
	oid := ObjectIDFromString("double-release")
	if err := c.Node(0).Put(ctx, oid, payload(128<<10, 1)); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Node(0).GetRef(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	ref.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	ref.Release()
}

// TestAwaitReturnsResolvedRefAfterCancel: a future that resolved before
// the ctx died must still hand its pinned ref to Await — otherwise the
// pin could never be released.
func TestAwaitReturnsResolvedRefAfterCancel(t *testing.T) {
	ctx := testCtx(t)
	c := startCluster(t, 1, Options{})
	oid := ObjectIDFromString("resolved-then-cancel")
	if err := c.Node(0).Put(ctx, oid, payload(128<<10, 2)); err != nil {
		t.Fatal(err)
	}
	gctx, cancel := context.WithCancel(ctx)
	fut := c.Node(0).GetRefAsync(gctx, oid) // local object: resolves synchronously
	<-fut.Done()
	cancel()
	for i := 0; i < 100; i++ { // the dead-ctx branch must never win
		ref, err := fut.Await(gctx)
		if err != nil {
			t.Fatalf("Await lost resolved ref to canceled ctx: %v", err)
		}
		if i == 0 {
			defer ref.Release()
		}
	}
}
