package hoplite

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"hoplite/internal/types"
)

// TestMembershipChaos is the deterministic membership chaos harness: a
// seeded RNG interleaves join, kill(+declare-dead), drain, and restart
// against a live put/get/reduce workload, checking after every step that
// no acknowledged object is lost, and at quiesce points that the
// replication factor is restored and exactly one primary serves each
// directory shard. The seed is in the subtest name, so a failure is
// replayable with -run 'TestMembershipChaos/seed=N'.
func TestMembershipChaos(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runMembershipChaos(t, seed)
		})
	}
}

type chaosObject struct {
	oid  ObjectID
	data []byte
}

type chaosState struct {
	t    *testing.T
	seed int64
	step int
	rng  *rand.Rand
	c    *Cluster

	shards int
	live   map[int]bool // node index -> process running and in the map
	hosts  map[int]bool // node index -> shard-hosting member
	acked  []chaosObject
	puts   int // distinct object namespace counter
}

func (s *chaosState) fail(format string, args ...any) {
	s.t.Helper()
	s.t.Fatalf("chaos seed %d step %d: %s", s.seed, s.step, fmt.Sprintf(format, args...))
}

// liveIdxs returns the running node indices in ascending order (map
// iteration order must not leak into seed-determined choices).
func (s *chaosState) liveIdxs() []int {
	var idxs []int
	for i, ok := range s.live {
		if ok {
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	return idxs
}

// liveNode picks a random running node index.
func (s *chaosState) liveNode() int {
	idxs := s.liveIdxs()
	if len(idxs) == 0 {
		s.fail("no live nodes left")
	}
	return idxs[s.rng.Intn(len(idxs))]
}

func (s *chaosState) liveCount() int {
	n := 0
	for _, ok := range s.live {
		if ok {
			n++
		}
	}
	return n
}

func (s *chaosState) liveHostCount() int {
	n := 0
	for i, ok := range s.live {
		if ok && s.hosts[i] {
			n++
		}
	}
	return n
}

func runMembershipChaos(t *testing.T, seed int64) {
	// Chaos runs wait out a repair pass before every destructive step, so
	// they need more headroom than the standard test context.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	t.Cleanup(cancel)
	const shards = 3
	c := startCluster(t, 3, Options{
		Emulate:           slowEmu(),
		ShardNodes:        shards,
		ReplicationFactor: 2,
		ObjectReplication: 2,
		RepairInterval:    50 * time.Millisecond,
	})
	s := &chaosState{
		t: t, seed: seed, rng: rand.New(rand.NewSource(seed)), c: c,
		shards: shards,
		live:   map[int]bool{0: true, 1: true, 2: true},
		hosts:  map[int]bool{0: true, 1: true, 2: true},
	}

	const steps = 40
	for s.step = 1; s.step <= steps; s.step++ {
		stepStart := time.Now()
		switch roll := s.rng.Intn(100); {
		case roll < 30:
			s.opPut(ctx)
		case roll < 55:
			s.opGet(ctx)
		case roll < 65:
			s.opReduce(ctx)
		case roll < 75:
			s.opJoin()
		case roll < 85:
			s.opBounce(ctx)
		case roll < 93:
			s.opLose(ctx)
		default:
			s.opDrain(ctx)
		}
		s.checkSample(ctx)
		if s.step%10 == 0 {
			s.quiesce(ctx, shards)
		}
		if d := time.Since(stepStart); d > 2*time.Second {
			s.t.Logf("chaos seed %d step %d: slow step (%v)", s.seed, s.step, d)
		}
	}
	s.quiesce(ctx, shards)
	// Final sweep: every acknowledged object must still be readable with
	// exact bytes through a surviving node.
	q := s.liveNode()
	for i, obj := range s.acked {
		gctx, gcancel := context.WithTimeout(ctx, 20*time.Second)
		got, err := c.Node(q).Get(gctx, obj.oid)
		gcancel()
		if err != nil {
			s.fail("final sweep Get %d (%v): %v", i, obj.oid, err)
		}
		if !bytes.Equal(got, obj.data) {
			s.fail("final sweep payload %d mismatch", i)
		}
	}
}

func (s *chaosState) opPut(ctx context.Context) {
	size := 1<<10 + s.rng.Intn(255<<10)
	data := payload(size, byte(s.rng.Intn(256)))
	s.puts++
	oid := ObjectIDFromString(fmt.Sprintf("chaos-%d-%d", s.seed, s.puts))
	n := s.liveNode()
	if err := s.c.Node(n).Put(ctx, oid, data); err != nil {
		s.fail("Put via node %d: %v", n, err)
	}
	s.acked = append(s.acked, chaosObject{oid, data})
}

func (s *chaosState) opGet(ctx context.Context) {
	if len(s.acked) == 0 {
		s.opPut(ctx)
		return
	}
	obj := s.acked[s.rng.Intn(len(s.acked))]
	n := s.liveNode()
	got, err := s.c.Node(n).Get(ctx, obj.oid)
	if err != nil {
		s.fail("Get %v via node %d: %v", obj.oid, n, err)
	}
	if !bytes.Equal(got, obj.data) {
		s.fail("Get %v via node %d: payload mismatch", obj.oid, n)
	}
}

func (s *chaosState) opReduce(ctx context.Context) {
	const elems = 4 << 10
	sources := make([]ObjectID, 3)
	var want float32
	for i := range sources {
		s.puts++
		sources[i] = ObjectIDFromString(fmt.Sprintf("chaos-red-%d-%d", s.seed, s.puts))
		val := float32(s.rng.Intn(100))
		want += val
		xs := make([]float32, elems)
		for k := range xs {
			xs[k] = val
		}
		n := s.liveNode()
		if err := s.c.Node(n).Put(ctx, sources[i], types.EncodeF32(xs)); err != nil {
			s.fail("reduce source Put via node %d: %v", n, err)
		}
	}
	s.puts++
	target := ObjectIDFromString(fmt.Sprintf("chaos-red-out-%d-%d", s.seed, s.puts))
	coord := s.liveNode()
	if _, err := s.c.Node(coord).Reduce(ctx, target, sources, len(sources), SumF32); err != nil {
		s.fail("Reduce via node %d: %v", coord, err)
	}
	raw, err := s.c.Node(s.liveNode()).Get(ctx, target)
	if err != nil {
		s.fail("reduce result Get: %v", err)
	}
	if got := types.DecodeF32(raw); got[0] != want || got[elems-1] != want {
		s.fail("reduce result: got %v want %v", got[0], want)
	}
	s.acked = append(s.acked, chaosObject{target, raw})
}

func (s *chaosState) opJoin() {
	if s.liveCount() >= 6 {
		return
	}
	storageOnly := s.rng.Intn(4) == 0
	idx, err := s.c.AddNode(storageOnly)
	if err != nil {
		s.fail("AddNode: %v", err)
	}
	s.live[idx] = true
	s.hosts[idx] = !storageOnly
	s.t.Logf("chaos seed %d step %d: joined node %d (storageOnly=%v)", s.seed, s.step, idx, storageOnly)
}

// opBounce kills a node and restarts it immediately: a transient failure
// that must leave the map unchanged and the node resyncing back in. A
// crash wipes the victim's in-memory copies, so like every destructive op
// it waits for full replication first — one fault at a time is the regime
// the repair scanner guarantees recovery under.
func (s *chaosState) opBounce(ctx context.Context) {
	if s.liveCount() < 3 {
		return
	}
	victim := s.liveNode()
	s.waitSettled(ctx, "pre-bounce quiesce", s.shards)
	if err := s.c.KillNode(victim); err != nil {
		s.fail("KillNode %d: %v", victim, err)
	}
	if err := s.c.RestartNode(victim); err != nil {
		s.fail("RestartNode %d: %v", victim, err)
	}
	s.t.Logf("chaos seed %d step %d: bounced node %d", s.seed, s.step, victim)
}

// opLose kills a node permanently and declares it dead. The kill only
// fires after under-replication has drained to zero, so the loss removes
// at most one of each object's copies — the guarantee the repair scanner
// is there to uphold.
func (s *chaosState) opLose(ctx context.Context) {
	victim := s.liveNode()
	if s.hosts[victim] && s.liveHostCount() <= 2 {
		return
	}
	if s.liveCount() <= 2 {
		return
	}
	s.waitSettled(ctx, "pre-kill quiesce", s.shards)
	s.auditSoleHolder(ctx, victim)
	if err := s.c.KillNode(victim); err != nil {
		s.fail("KillNode %d: %v", victim, err)
	}
	s.live[victim] = false
	delete(s.hosts, victim)
	if err := s.c.DeclareDead(ctx, victim); err != nil {
		s.fail("DeclareDead %d: %v", victim, err)
	}
	s.t.Logf("chaos seed %d step %d: lost node %d", s.seed, s.step, victim)
}

func (s *chaosState) opDrain(ctx context.Context) {
	victim := s.liveNode()
	if s.hosts[victim] && s.liveHostCount() <= 2 {
		return
	}
	if s.liveCount() <= 2 {
		return
	}
	s.waitSettled(ctx, "pre-drain quiesce", s.shards)
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := s.c.DrainNode(dctx, victim); err != nil {
		s.fail("DrainNode %d: %v", victim, err)
	}
	s.live[victim] = false
	delete(s.hosts, victim)
	s.t.Logf("chaos seed %d step %d: drained node %d", s.seed, s.step, victim)
}

// checkSample spot-checks a few acknowledged objects after every step.
func (s *chaosState) checkSample(ctx context.Context) {
	for i := 0; i < 3 && len(s.acked) > 0; i++ {
		obj := s.acked[s.rng.Intn(len(s.acked))]
		n := s.liveNode()
		// Bound each sample so a wedged Get fails fast with its own error
		// instead of silently consuming the whole run budget.
		gctx, gcancel := context.WithTimeout(ctx, 20*time.Second)
		got, err := s.c.Node(n).Get(gctx, obj.oid)
		gcancel()
		if err != nil {
			s.fail("sample Get %v via node %d: %v", obj.oid, n, err)
		}
		if !bytes.Equal(got, obj.data) {
			s.fail("sample Get %v via node %d: payload mismatch", obj.oid, n)
		}
	}
}

// waitRepaired blocks until the repair scanner reports every object back
// at its replication target. It polls through the lowest live node — no
// rng draws, so a poll's duration cannot perturb the seeded op sequence.
// auditSoleHolder is a debugging aid: after a repair quiesce claims full
// replication, cross-check every acked object's whole-copy holders and
// log any whose only live holder is the node about to be killed.
func (s *chaosState) auditSoleHolder(ctx context.Context, victim int) {
	s.t.Helper()
	q := -1
	for _, i := range s.liveIdxs() {
		if i != victim {
			q = i
			break
		}
	}
	if q < 0 {
		return
	}
	victimID := s.c.Node(victim).ID()
	for _, obj := range s.acked {
		rec, err := s.c.Node(q).Directory().Lookup(ctx, obj.oid, false)
		if err != nil {
			s.t.Logf("chaos seed %d step %d: audit Lookup %v: %v", s.seed, s.step, obj.oid, err)
			continue
		}
		if len(rec.Inline) > 0 {
			continue
		}
		others := 0
		onVictim := false
		for _, l := range rec.Locs {
			if !l.Progress.HasAll() {
				continue
			}
			if l.Node == victimID {
				onVictim = true
			} else {
				others++
			}
		}
		if onVictim && others == 0 {
			s.t.Logf("chaos seed %d step %d: AUDIT object %v sole whole copy on victim %d (locs=%v)", s.seed, s.step, obj.oid, victim, rec.Locs)
		}
	}
}

// waitSettled blocks until the cluster is safe to hurt again: objects
// back at full replication AND every directory shard replica in sync
// with exactly one primary. With shard replication factor 2 a group
// move leaves a short window where the backup is still streaming its
// snapshot; killing the primary inside that window orphans the shard,
// which is an operator error, not a recovery bug — so the harness (like
// an operator) waits it out before each destructive step.
func (s *chaosState) waitSettled(ctx context.Context, what string, shards int) {
	s.t.Helper()
	s.waitRepaired(ctx, what)
	deadline := time.Now().Add(20 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		if last = s.converged(shards); last == "" {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	s.fail("%s: cluster did not settle: %s", what, last)
}

func (s *chaosState) waitRepaired(ctx context.Context, what string) {
	s.t.Helper()
	q := s.liveIdxs()[0]
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		u, err := s.c.Node(q).Directory().UnderReplicated(ctx)
		if err == nil && u == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	s.fail("%s: under-replication did not drain", what)
}

// quiesce checks the convergence invariants: replication restored, every
// live node on the same map epoch, and exactly one primary per shard.
func (s *chaosState) quiesce(ctx context.Context, shards int) {
	s.t.Helper()
	s.waitRepaired(ctx, "quiesce")
	deadline := time.Now().Add(20 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		if msg := s.converged(shards); msg == "" {
			return
		} else {
			last = msg
		}
		time.Sleep(20 * time.Millisecond)
	}
	s.fail("quiesce: cluster did not converge: %s", last)
}

// converged returns "" when epochs agree and each shard has exactly one
// primary among live nodes, else a description of the divergence.
func (s *chaosState) converged(shards int) string {
	epoch := int64(-1)
	primaries := make([]int, shards)
	for i, ok := range s.live {
		if !ok {
			continue
		}
		n := s.c.Node(i)
		cm := n.ClusterMap()
		if epoch == -1 {
			epoch = cm.Epoch
		} else if cm.Epoch != epoch {
			return fmt.Sprintf("node %d at epoch %d, others at %d", i, cm.Epoch, epoch)
		}
		for _, r := range n.ShardServer().Roles() {
			if r.Primary && !r.Retiring {
				primaries[r.Shard]++
			}
			if r.Syncing {
				return fmt.Sprintf("node %d shard %d replica still syncing", i, r.Shard)
			}
		}
	}
	for sh, n := range primaries {
		if n != 1 {
			return fmt.Sprintf("shard %d has %d primaries", sh, n)
		}
	}
	return ""
}
